package workloads

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/profile"
	"repro/internal/vm"
)

func TestRegistryHasThirteenBenchmarks(t *testing.T) {
	if got := len(All()); got != 13 {
		t.Fatalf("registry has %d workloads, want 13 (Table I): %v", got, Names())
	}
	seen := map[string]bool{}
	for _, w := range All() {
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
		if w.Source == "" || w.Output == "" || w.Bind == nil || w.Measure == nil {
			t.Errorf("workload %s incomplete", w.Name)
		}
	}
	for _, name := range []string{"jpegenc", "jpegdec", "tiff2bw", "segm",
		"tex_synth", "g721enc", "g721dec", "mp3enc", "mp3dec", "h264enc",
		"h264dec", "kmeans", "svm"} {
		if ByName(name) == nil {
			t.Errorf("missing workload %s", name)
		}
	}
}

// runWorkload compiles, binds and runs one workload, returning the result
// and output words.
func runWorkload(t *testing.T, w *Workload, kind InputKind) (*vm.Result, []uint64) {
	t.Helper()
	mod, err := w.Compile()
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	mach, err := vm.New(mod.Clone(), vm.DefaultConfig())
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	if err := w.Bind(mach, kind); err != nil {
		t.Fatalf("%s bind: %v", w.Name, err)
	}
	mach.Reset()
	res := mach.Run(vm.RunOptions{})
	if res.Trap != nil {
		t.Fatalf("%s (%s input) trapped: %v", w.Name, kind, res.Trap)
	}
	out, err := mach.ReadGlobal(w.Output)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return res, out
}

func TestAllWorkloadsRunCleanOnBothInputs(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, kind := range []InputKind{Train, Test} {
				res, out := runWorkload(t, w, kind)
				if res.Dyn < 1000 {
					t.Errorf("%s input: only %d dynamic instructions — kernel too trivial?", kind, res.Dyn)
				}
				// Output must not be all zeros (the program did something).
				nonzero := false
				for _, v := range out {
					if v != 0 {
						nonzero = true
						break
					}
				}
				if !nonzero {
					t.Errorf("%s input: output global is all zeros", kind)
				}
				// Self-fidelity must be perfect and acceptable.
				fid := w.Measure(out, out, kind)
				if !w.Acceptable(fid) {
					t.Errorf("%s input: perfect output rated unacceptable (%v %v)", kind, fid, w.Judge.Describe())
				}
			}
		})
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			r1, o1 := runWorkload(t, w, Test)
			r2, o2 := runWorkload(t, w, Test)
			if r1.Dyn != r2.Dyn || r1.Cycles != r2.Cycles {
				t.Fatalf("nondeterministic run: dyn %d/%d cycles %d/%d", r1.Dyn, r2.Dyn, r1.Cycles, r2.Cycles)
			}
			for i := range o1 {
				if o1[i] != o2[i] {
					t.Fatalf("output differs at word %d", i)
				}
			}
		})
	}
}

func TestTrainAndTestInputsDiffer(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			r1, _ := runWorkload(t, w, Train)
			r2, _ := runWorkload(t, w, Test)
			if r1.Dyn == r2.Dyn {
				t.Errorf("train and test runs have identical instruction counts (%d); inputs likely identical", r1.Dyn)
			}
			if r1.Dyn < r2.Dyn {
				t.Errorf("train input (%d dyn) smaller than test (%d); Table I uses larger training inputs", r1.Dyn, r2.Dyn)
			}
		})
	}
}

// TestProtectionPreservesWorkloadSemantics is the central end-to-end
// property: every protection mode leaves every benchmark's fault-free
// output bit-identical.
func TestProtectionPreservesWorkloadSemantics(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			mod, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			_, golden := runWorkload(t, w, Test)

			// Profile on the training input.
			profMach, err := vm.New(mod.Clone(), vm.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Bind(profMach, Train); err != nil {
				t.Fatal(err)
			}
			profMach.Reset()
			col := profile.NewCollector(profile.DefaultBins)
			if res := profMach.Run(vm.RunOptions{Profiler: col}); res.Trap != nil {
				t.Fatalf("profiling trapped: %v", res.Trap)
			}
			prof := col.Data()

			for _, mode := range []string{core.SchemeDup, core.SchemeDupVal, core.SchemeFullDup} {
				prot := mod.Clone()
				var pd *profile.Data
				if mode == core.SchemeDupVal {
					pd = prof
				}
				stats, err := core.Protect(prot, mode, pd, core.DefaultParams())
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				if mode != core.SchemeDupVal && stats.DupInstrs == 0 {
					t.Errorf("%s: nothing duplicated", mode)
				}
				mach, err := vm.New(prot, vm.DefaultConfig())
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				if err := w.Bind(mach, Test); err != nil {
					t.Fatal(err)
				}
				mach.Reset()
				res := mach.Run(vm.RunOptions{CountChecks: true})
				if res.Trap != nil {
					t.Fatalf("%s trapped: %v", mode, res.Trap)
				}
				out, _ := mach.ReadGlobal(w.Output)
				for i := range golden {
					if out[i] != golden[i] {
						t.Fatalf("%s changed output word %d: %x -> %x", mode, i, golden[i], out[i])
					}
				}
			}
		})
	}
}

// TestFidelityDegradesWithCorruption corrupts outputs artificially and
// checks every metric responds in the right direction.
func TestFidelityDegradesWithCorruption(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, golden := runWorkload(t, w, Test)
			perfect := w.Measure(golden, golden, Test)

			// Corrupt a large portion of the output massively.
			bad := append([]uint64(nil), golden...)
			for i := 0; i < len(bad); i += 2 {
				if w.Name == "kmeans" || w.Name == "svm" || w.Name == "segm" {
					bad[i] = uint64(int64(bad[i]) + 1) // flip labels
				} else {
					bad[i] = uint64(int64(bad[i]) ^ 0x3fff)
				}
			}
			worse := w.Measure(golden, bad, Test)
			if w.Judge.HigherIsBetter {
				if !(worse < perfect) && !math.IsInf(perfect, 1) {
					t.Errorf("corruption did not lower metric: %v -> %v", perfect, worse)
				}
				if w.Acceptable(worse) {
					t.Errorf("gross corruption rated acceptable (%v)", worse)
				}
			} else {
				if worse <= perfect {
					t.Errorf("corruption did not raise error metric: %v -> %v", perfect, worse)
				}
				if w.Acceptable(worse) {
					t.Errorf("gross corruption rated acceptable (%v)", worse)
				}
			}
		})
	}
}

func TestStaticProtectionFractionsReasonable(t *testing.T) {
	// Figure 10's headline: at most ~11.4% of static instructions are
	// duplicated and ~8.3% carry value checks. Our kernels are smaller, so
	// allow generous slack, but catch runaway duplication.
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			mod, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			prot := mod.Clone()
			stats, err := core.Protect(prot, core.SchemeDup, nil, core.DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			if stats.StateVars == 0 {
				t.Error("no state variables found — every benchmark has loops")
			}
			if f := stats.FracDuplicated(); f > 0.6 {
				t.Errorf("duplicated fraction %.2f implausibly high", f)
			}
		})
	}
}

// TestJpegdecStreamFaultsCorruptManyBlocks checks the paper's Figure 1
// narrative: some faults in the entropy-decode path corrupt far more than
// one block, pushing PSNR way below the 30 dB threshold.
func TestJpegdecStreamFaultsCorruptManyBlocks(t *testing.T) {
	w := ByName("jpegdec")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fault.Run(context.Background(), w.Target(Test), mod.Clone(), "Original", fault.Config{
		Trials: 400, Seed: 77, SymptomWindow: 1000, WatchdogFactor: 20, LargeChange: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	worst := 1e9
	sdcs := 0
	for _, tr := range rep.Trials {
		if tr.SDC && tr.Fidelity < worst {
			worst = tr.Fidelity
		}
		if tr.SDC {
			sdcs++
		}
	}
	if sdcs == 0 {
		t.Skip("no SDCs in this campaign")
	}
	if worst > 25 {
		t.Errorf("worst SDC PSNR %.1f dB — no multi-block corruption observed (Fig. 1c behaviour)", worst)
	}
	t.Logf("%d SDCs, worst PSNR %.1f dB", sdcs, worst)
}
