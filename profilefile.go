package softft

import (
	"fmt"
	"io"

	"repro/internal/profile"
)

// Save writes the profile as JSON, tagged with the program name it was
// collected on.
func (p *Profile) Save(w io.Writer, programName string) error {
	return p.data.Save(w, programName)
}

// LoadProfile reads a profile saved with Profile.Save. If programName is
// non-empty it must match the name recorded in the file (profiles are keyed
// by instruction identity and do not transfer across recompilations of
// different sources).
func LoadProfile(r io.Reader, programName string) (*Profile, error) {
	data, module, err := profile.Load(r)
	if err != nil {
		return nil, err
	}
	if programName != "" && module != programName {
		return nil, fmt.Errorf("softft: profile was collected on %q, not %q", module, programName)
	}
	return &Profile{data: data}, nil
}
