package softft

import (
	"os"
	"testing"
)

// TestSampleSourceFile keeps testdata/sobel.sf (the `softft -src` demo
// program) compiling and behaving: protection must preserve its output.
func TestSampleSourceFile(t *testing.T) {
	src, err := os.ReadFile("testdata/sobel.sf")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile("sobel", string(src))
	if err != nil {
		t.Fatalf("sample program no longer compiles: %v", err)
	}
	const w, h = 32, 32
	img := make([]int64, 4096)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := int64((x*8 + y*3) % 256)
			if x > 16 {
				v = 255 - v
			}
			img[y*w+x] = v
		}
	}
	in := NewInput().SetInts("img", img).SetInts("params", []int64{w, h})

	base, err := prog.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	golden, _ := base.Ints("out")
	edges := 0
	for _, v := range golden {
		if v > 128 {
			edges++
		}
	}
	if edges == 0 {
		t.Fatal("sobel found no edges in an image with a hard vertical edge")
	}

	hard, stats, err := prog.Protect(DuplicationOnly, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StateVars < 2 {
		t.Errorf("expected at least the two loop counters as state vars, got %d", stats.StateVars)
	}
	prot, err := hard.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := prot.Ints("out")
	for i := range golden {
		if out[i] != golden[i] {
			t.Fatalf("protection changed sobel output at %d", i)
		}
	}
}
