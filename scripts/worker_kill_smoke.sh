#!/usr/bin/env bash
# Worker-kill smoke for the distributed campaign service (DESIGN.md,
# "Campaign service"): run one campaign solo, then sharded across two
# worker processes with one worker SIGKILLed mid-flight, and require the
# merged report to be byte-identical to the solo one. Also requires the
# kill to have actually cost a lease (campaignd_lease_expiries > 0), so a
# too-fast campaign fails the smoke instead of silently not testing it.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH=${BENCH:-g721dec}
MODE=${MODE:-dup}
TRIALS=${TRIALS:-4000}
ADDR=127.0.0.1:7177

DIR=$(mktemp -d)
trap 'kill $(jobs -p) >/dev/null 2>&1 || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/softft" ./cmd/softft

"$DIR/softft" -bench "$BENCH" -mode "$MODE" -inject "$TRIALS" >"$DIR/ref.out"

"$DIR/softft" serve -addr "$ADDR" -dir "$DIR/journals" -lease-ttl 2s -backoff 100ms 2>"$DIR/serve.log" &
sleep 0.5
# -workers 1 keeps shard campaigns slow enough that the kill lands mid-run.
"$DIR/softft" work -coordinator "http://$ADDR" -id w1 -workers 1 2>"$DIR/w1.log" &
"$DIR/softft" work -coordinator "http://$ADDR" -id w2 -workers 1 2>"$DIR/w2.log" &
W2=$!

"$DIR/softft" submit -coordinator "http://$ADDR" -bench "$BENCH" -mode "$MODE" \
  -inject "$TRIALS" -shards 4 -wait >"$DIR/svc.out" 2>"$DIR/submit.log" &
SUB=$!

# SIGKILL w2 once the campaign is demonstrably mid-flight: some trials
# streamed, job still running.
done_ct=0
for _ in $(seq 1 200); do
  progress=$(curl -s "http://$ADDR/progress" || true)
  done_ct=$(printf '%s' "$progress" | grep -o '"done":[0-9]*' | head -1 | cut -d: -f2)
  state=$(printf '%s' "$progress" | grep -o '"state":"[a-z]*"' | head -1 | cut -d'"' -f4)
  [ "${done_ct:-0}" -gt 0 ] && [ "${state:-}" = running ] && break
  sleep 0.1
done
kill -9 "$W2"
echo "SIGKILLed w2 with ${done_ct:-0} trials streamed"

wait "$SUB"

diff "$DIR/ref.out" "$DIR/svc.out"
echo "merged report byte-identical to solo run"

curl -s "http://$ADDR/metrics" >"$DIR/metrics.txt"
grep -E 'lease_expiries|retries|jobs_done' "$DIR/metrics.txt"
grep -Eq 'campaignd_lease_expiries [1-9]' "$DIR/metrics.txt" ||
  { echo "worker kill landed too late: no lease expired (raise TRIALS)"; exit 1; }
echo "worker-kill smoke OK"
