// Package softft is a library for low-budget software-only transient-fault
// tolerance of soft-computing programs, reproducing Khudia & Mahlke,
// "Harnessing Soft Computations for Low-budget Fault Tolerance" (MICRO
// 2014).
//
// Programs are written in a small C-like language and compiled to an SSA
// IR. The library identifies critical loop-carried state variables and
// protects them by selectively duplicating their producer chains, while
// guarding the remaining soft computation with cheap expected-value checks
// derived from value profiles. A simulated machine executes programs,
// models runtime cost, and injects single-bit register faults so the
// protection's coverage can be measured.
//
// Typical use:
//
//	prog, _ := softft.Compile("pipeline", source)
//	prof, _ := prog.ProfileValues(trainInput)
//	hard, stats, _ := prog.Protect(softft.DuplicationWithValueChecks, prof)
//	res, _ := hard.Run(testInput)
package softft

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/vm"
)

// Program is a compiled (and possibly protected) program.
type Program struct {
	name string
	mod  *ir.Module
}

// Compile parses and compiles source written in the workload language into
// an SSA-form program ready to run, profile, or protect.
func Compile(name, source string) (*Program, error) {
	mod, err := lang.Compile(name, source)
	if err != nil {
		return nil, err
	}
	return &Program{name: name, mod: mod}, nil
}

// Name returns the program's name.
func (p *Program) Name() string { return p.name }

// Clone returns an independent deep copy.
func (p *Program) Clone() *Program {
	return &Program{name: p.name, mod: p.mod.Clone()}
}

// Dump renders the program's IR as text.
func (p *Program) Dump() string { return p.mod.String() }

// NumInstrs returns the static instruction count.
func (p *Program) NumInstrs() int { return p.mod.NumInstrs() }

// Input carries the host-side bindings of a program's input globals.
type Input struct {
	binds []func(*vm.Machine) error
}

// NewInput returns an empty input set.
func NewInput() *Input { return &Input{} }

// SetInts binds an integer array to the named global.
func (in *Input) SetInts(global string, vals []int64) *Input {
	in.binds = append(in.binds, func(m *vm.Machine) error {
		return m.BindInputInts(global, vals)
	})
	return in
}

// SetFloats binds a float array to the named global.
func (in *Input) SetFloats(global string, vals []float64) *Input {
	in.binds = append(in.binds, func(m *vm.Machine) error {
		return m.BindInputFloats(global, vals)
	})
	return in
}

// bind applies all bindings to a machine.
func (in *Input) bind(m *vm.Machine) error {
	if in == nil {
		return nil
	}
	for _, b := range in.binds {
		if err := b(m); err != nil {
			return err
		}
	}
	return nil
}

// Result is the outcome of a fault-free run.
type Result struct {
	// Dyn is the dynamic instruction count; Cycles the timing-model cost.
	Dyn, Cycles int64
	// CheckFailures counts expected-value checks that fired (false
	// positives in a fault-free run).
	CheckFailures int64
	mach          *vm.Machine
}

// Ints reads an output global as integers.
func (r *Result) Ints(global string) ([]int64, error) {
	return r.mach.ReadGlobalInts(global)
}

// Floats reads an output global as floats.
func (r *Result) Floats(global string) ([]float64, error) {
	return r.mach.ReadGlobalFloats(global)
}

// Words reads an output global as raw 64-bit words.
func (r *Result) Words(global string) ([]uint64, error) {
	return r.mach.ReadGlobal(global)
}

// Run executes the program with the given input. Check failures are
// counted, not fatal; traps (out-of-bounds, division by zero, runaway
// loops) surface as errors.
func (p *Program) Run(in *Input) (*Result, error) {
	return p.RunContext(context.Background(), in)
}

// RunContext is Run with cancellation: the machine polls ctx's Done channel
// every few thousand simulated instructions and aborts the run with an error
// wrapping ctx.Err() once it is closed.
func (p *Program) RunContext(ctx context.Context, in *Input) (*Result, error) {
	mach, err := p.machine(in)
	if err != nil {
		return nil, err
	}
	var stop <-chan struct{}
	if ctx != nil {
		stop = ctx.Done()
	}
	res := mach.Run(vm.RunOptions{CountChecks: true, Stop: stop})
	if res.Trap != nil {
		if res.Trap.Kind == vm.TrapCancelled && ctx.Err() != nil {
			return nil, fmt.Errorf("softft: %s: %w", p.name, ctx.Err())
		}
		return nil, fmt.Errorf("softft: %s: %w", p.name, res.Trap)
	}
	return &Result{Dyn: res.Dyn, Cycles: res.Cycles, CheckFailures: res.CheckFails, mach: mach}, nil
}

func (p *Program) machine(in *Input) (*vm.Machine, error) {
	mach, err := vm.New(p.mod, vm.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if err := in.bind(mach); err != nil {
		return nil, err
	}
	mach.Reset()
	return mach, nil
}

// Profile holds per-instruction value profiles collected on a training
// input (the paper's one-time offline step).
type Profile struct {
	data *profile.Data
}

// ProfileValues runs the program under the value profiler (Algorithm 1 of
// the paper, B=5 bins per instruction) and returns the collected profiles.
func (p *Program) ProfileValues(in *Input) (*Profile, error) {
	mach, err := p.machine(in)
	if err != nil {
		return nil, err
	}
	col := profile.NewCollector(profile.DefaultBins)
	res := mach.Run(vm.RunOptions{Profiler: col})
	if res.Trap != nil {
		return nil, fmt.Errorf("softft: profiling %s: %w", p.name, res.Trap)
	}
	return &Profile{data: col.Data()}, nil
}

// Mode names a protection scheme from the process-wide scheme registry. The
// zero value is Original (no protection). Beyond the predefined modes, a
// Mode can name any registered scheme or a '+'-composition of schemes
// ("abft+dupval") obtained from ParseMode or Compose.
type Mode struct {
	name string
}

// Predefined protection modes (the paper's four configurations plus the
// ABFT extension).
var (
	// Original applies no protection.
	Original = Mode{core.SchemeOriginal}
	// DuplicationOnly duplicates the producer chains of loop-carried state
	// variables and compares original against duplicate each iteration.
	DuplicationOnly = Mode{core.SchemeDup}
	// DuplicationWithValueChecks adds profile-derived expected-value
	// checks and the paper's two optimizations; requires a Profile.
	DuplicationWithValueChecks = Mode{core.SchemeDupVal}
	// FullDuplication is the SWIFT-style baseline: duplicate every
	// computation chain feeding a store, branch, call or return.
	FullDuplication = Mode{core.SchemeFullDup}
	// ABFT maintains per-kernel dual checksums over values stored by loop
	// nests and compares them once at each kernel exit.
	ABFT = Mode{core.SchemeABFT}
)

// ParseMode resolves a scheme name ("dupval") or a '+'-composition
// ("abft+dupval") against the scheme registry. Matching is
// case-insensitive; the returned Mode is canonical, so
// ParseMode(m.String()) round-trips for every valid m.
func ParseMode(s string) (Mode, error) {
	sch, err := core.ParseScheme(s)
	if err != nil {
		return Mode{}, fmt.Errorf("softft: %w", err)
	}
	return Mode{sch.Name()}, nil
}

// Compose combines modes left to right into one that applies each part in
// order ("abft+dupval": checksum the kernels, then duplicate state
// variables and add value checks).
func Compose(modes ...Mode) Mode {
	names := make([]string, len(modes))
	for i, m := range modes {
		names[i] = m.String()
	}
	m, err := ParseMode(strings.Join(names, "+"))
	if err != nil {
		// Unreachable for Modes produced by this package; a hand-rolled
		// invalid Mode fails later at Protect with the same error.
		return Mode{strings.Join(names, "+")}
	}
	return m
}

// Modes returns every registered protection mode in registration order (the
// paper's cost order first, then extensions).
func Modes() []Mode {
	names := core.SchemeNames()
	out := make([]Mode, len(names))
	for i, n := range names {
		out[i] = Mode{n}
	}
	return out
}

// String returns the canonical scheme name ("dupval"). It is stable across
// releases and round-trips through ParseMode.
func (m Mode) String() string {
	if m.name == "" {
		return core.SchemeOriginal
	}
	return m.name
}

// Title returns the human-readable label used in reports and figures
// ("Dup + val chks").
func (m Mode) Title() string { return core.Title(m.String()) }

// NeedsProfile reports whether Protect requires a value Profile for this
// mode.
func (m Mode) NeedsProfile() bool {
	sch, err := core.ParseScheme(m.String())
	if err != nil {
		return false
	}
	return sch.NeedsProfile()
}

// MarshalText implements encoding.TextMarshaler using the canonical name.
func (m Mode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler via ParseMode.
func (m *Mode) UnmarshalText(b []byte) error {
	parsed, err := ParseMode(string(b))
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// Stats summarizes what a protection pass did.
type Stats struct {
	TotalInstrs      int // static instructions before protection
	StateVars        int
	DuplicatedInstrs int
	ValueChecks      int
	DupChecks        int
	ABFTKernels      int // kernel loops covered by ABFT checksums
	ABFTChecks       int // checksum comparisons inserted at kernel exits
}

// Option tunes a protection pass (see the paper's R_thr and the coverage
// thresholds controlling false positives). Options apply on top of the
// defaults used in the paper reproduction, and explicitly setting a
// default's value is honored — including zero.
type Option func(*core.Params)

// WithRangeThreshold sets R_thr, the maximum width of a compact range
// eligible for a range check.
func WithRangeThreshold(w float64) Option {
	return func(p *core.Params) { p.RangeThreshold = w }
}

// WithMinRangeCoverage sets the fraction of profiled values a compact range
// must cover before a range check is inserted.
func WithMinRangeCoverage(c float64) Option {
	return func(p *core.Params) { p.MinRangeCoverage = c }
}

// WithMinValueCoverage sets the coverage required for single-/two-value
// checks.
func WithMinValueCoverage(c float64) Option {
	return func(p *core.Params) { p.MinValueCoverage = c }
}

// WithMinSamples sets the minimum number of profiled observations before an
// instruction is considered for checks.
func WithMinSamples(n uint64) Option {
	return func(p *core.Params) { p.MinSamples = n }
}

// WithOpt1 toggles check pruning along producer chains (paper
// Optimization 1).
func WithOpt1(on bool) Option {
	return func(p *core.Params) { p.Opt1 = on }
}

// WithOpt2 toggles terminating duplication at check-amenable producers
// (paper Optimization 2).
func WithOpt2(on bool) Option {
	return func(p *core.Params) { p.Opt2 = on }
}

// WithDupThroughLoads continues duplication past load instructions (the
// paper stops at loads to save memory traffic).
func WithDupThroughLoads(on bool) Option {
	return func(p *core.Params) { p.DupThroughLoads = on }
}

// Protect returns a protected copy of the program. prof may be nil unless
// mode.NeedsProfile.
func (p *Program) Protect(mode Mode, prof *Profile) (*Program, Stats, error) {
	return p.ProtectWith(mode, prof)
}

// ProtectWith is Protect with explicit tuning options.
func (p *Program) ProtectWith(mode Mode, prof *Profile, opts ...Option) (*Program, Stats, error) {
	params := core.DefaultParams()
	for _, opt := range opts {
		opt(&params)
	}
	var data *profile.Data
	if prof != nil {
		data = prof.data
	}
	mod := p.mod.Clone()
	st, err := core.Protect(mod, mode.String(), data, params)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("softft: %s: %w", p.name, err)
	}
	return &Program{name: p.name + "+" + mode.String(), mod: mod}, Stats{
		TotalInstrs:      st.TotalInstrs,
		StateVars:        st.StateVars,
		DuplicatedInstrs: st.DupInstrs,
		ValueChecks:      st.ValueChecks,
		DupChecks:        st.DupChecks,
		ABFTKernels:      st.ABFTKernels,
		ABFTChecks:       st.ABFTChecks,
	}, nil
}

// Tuning exposes the check-amenability knobs.
//
// Deprecated: Tuning cannot express "set a knob to zero" — zero-valued
// fields silently fall back to the defaults. Use ProtectWith with Options
// instead.
type Tuning struct {
	RangeThreshold   float64
	MinRangeCoverage float64
	MinValueCoverage float64
	// DisableOpt1 turns off check deduplication along producer chains.
	DisableOpt1 bool
	// DisableOpt2 keeps duplicating through check-amenable producers.
	DisableOpt2 bool
}

// ProtectTuned is Protect with explicit tuning; zero-valued fields take the
// defaults used in the paper reproduction.
//
// Deprecated: use ProtectWith, whose Options honor explicit zero values.
func (p *Program) ProtectTuned(mode Mode, prof *Profile, t Tuning) (*Program, Stats, error) {
	var opts []Option
	if t.RangeThreshold > 0 {
		opts = append(opts, WithRangeThreshold(t.RangeThreshold))
	}
	if t.MinRangeCoverage > 0 {
		opts = append(opts, WithMinRangeCoverage(t.MinRangeCoverage))
	}
	if t.MinValueCoverage > 0 {
		opts = append(opts, WithMinValueCoverage(t.MinValueCoverage))
	}
	opts = append(opts, WithOpt1(!t.DisableOpt1), WithOpt2(!t.DisableOpt2))
	return p.ProtectWith(mode, prof, opts...)
}

// Trace runs the program writing a per-instruction execution trace to w
// (at most limit events; 0 = unlimited). Useful for debugging kernels and
// inspecting how a protected program interleaves checks with computation.
func (p *Program) Trace(in *Input, w io.Writer, limit int64) (*Result, error) {
	mach, err := p.machine(in)
	if err != nil {
		return nil, err
	}
	res := mach.Run(vm.RunOptions{CountChecks: true, Tracer: &vm.WriterTracer{W: w, Limit: limit}})
	if res.Trap != nil {
		return nil, fmt.Errorf("softft: %s: %w", p.name, res.Trap)
	}
	return &Result{Dyn: res.Dyn, Cycles: res.Cycles, CheckFailures: res.CheckFails, mach: mach}, nil
}
