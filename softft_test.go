package softft

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const testKernel = `
// Running-sum filter with a CRC over the input: state variables (acc, crc)
// plus per-element soft computation.
global int in[256];
global int tab[16];
global int out[256];
global int crcout[1];

void main() {
	int acc = 0;
	int crc = 0xff;
	for (int i = 0; i < 256; i += 1) {
		int v = in[i];
		crc = ((crc << 1) ^ tab[(v ^ crc) & 15]) & 0xffff;
		acc = (acc * 3 + v) & 0xffff;
		out[i] = (v * 7 + acc) & 255;
	}
	crcout[0] = crc;
}`

func testInput() *Input {
	vals := make([]int64, 256)
	for i := range vals {
		vals[i] = int64((i*31 + 7) % 251)
	}
	tab := make([]int64, 16)
	for i := range tab {
		tab[i] = int64(i*i*37 + 11)
	}
	return NewInput().SetInts("in", vals).SetInts("tab", tab)
}

func TestCompileAndRun(t *testing.T) {
	prog, err := Compile("kernel", testKernel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(testInput())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dyn == 0 || res.Cycles == 0 {
		t.Fatal("no execution recorded")
	}
	out, err := res.Ints("out")
	if err != nil {
		t.Fatal(err)
	}
	nonzero := false
	for _, v := range out {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("output all zeros")
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	if _, err := Compile("bad", "void main() { undeclared = 1; }"); err == nil {
		t.Fatal("bad program accepted")
	}
}

func TestProtectModesPreserveOutput(t *testing.T) {
	prog, err := Compile("kernel", testKernel)
	if err != nil {
		t.Fatal(err)
	}
	base, err := prog.Run(testInput())
	if err != nil {
		t.Fatal(err)
	}
	golden, _ := base.Ints("out")

	prof, err := prog.ProfileValues(testInput())
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []Mode{DuplicationOnly, DuplicationWithValueChecks, FullDuplication} {
		hard, stats, err := prog.Protect(mode, prof)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if mode != DuplicationWithValueChecks && stats.DuplicatedInstrs == 0 {
			t.Errorf("%s: nothing duplicated", mode)
		}
		if mode == DuplicationWithValueChecks && stats.ValueChecks == 0 {
			t.Errorf("%s: no value checks", mode)
		}
		res, err := hard.Run(testInput())
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		out, _ := res.Ints("out")
		for i := range golden {
			if out[i] != golden[i] {
				t.Fatalf("%s changed output[%d]", mode, i)
			}
		}
		if res.Cycles <= base.Cycles {
			t.Errorf("%s: protection cost nothing (%d <= %d)", mode, res.Cycles, base.Cycles)
		}
	}
}

func TestProtectRequiresProfileForValueChecks(t *testing.T) {
	prog, _ := Compile("kernel", testKernel)
	if _, _, err := prog.Protect(DuplicationWithValueChecks, nil); err == nil {
		t.Fatal("value-check protection without profile accepted")
	}
}

func TestInjectFaultsThroughPublicAPI(t *testing.T) {
	prog, _ := Compile("kernel", testKernel)
	prof, _ := prog.ProfileValues(testInput())
	hard, _, err := prog.Protect(DuplicationWithValueChecks, prof)
	if err != nil {
		t.Fatal(err)
	}
	out, err := hard.InjectFaults(testInput(), Campaign{Trials: 150, Seed: 7, Output: "out"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 150 {
		t.Fatalf("trials = %d", out.Trials)
	}
	total := out.Masked + out.HWDetected + out.SWDetected + out.Failures + out.USDCs
	if total != out.Trials {
		t.Fatalf("outcomes sum to %d", total)
	}
	if out.Coverage() < 0.5 {
		t.Errorf("coverage %.2f implausibly low", out.Coverage())
	}
	if !strings.Contains(out.String(), "coverage") {
		t.Error("String() missing coverage")
	}
}

func TestBenchmarkAccess(t *testing.T) {
	names := Benchmarks()
	if len(names) != 13 {
		t.Fatalf("benchmarks = %d", len(names))
	}
	b, err := GetBenchmark("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.Description(), "Clustering") && !strings.Contains(b.Description(), "K-means") {
		t.Errorf("description = %q", b.Description())
	}
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(b.TestInput())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dyn == 0 {
		t.Fatal("benchmark did not run")
	}
	if _, err := GetBenchmark("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestBenchmarkCampaignViaFacade(t *testing.T) {
	b, _ := GetBenchmark("tiff2bw")
	prog, _ := b.Program()
	prof, err := prog.ProfileValues(b.TrainInput())
	if err != nil {
		t.Fatal(err)
	}
	hard, _, err := prog.Protect(DuplicationWithValueChecks, prof)
	if err != nil {
		t.Fatal(err)
	}
	c := b.NewCampaign(80)
	out, err := hard.InjectFaults(b.TestInput(), c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 80 {
		t.Fatalf("trials = %d", out.Trials)
	}
}

func TestTuningKnobs(t *testing.T) {
	prog, _ := Compile("kernel", testKernel)
	prof, _ := prog.ProfileValues(testInput())
	_, loose, err := prog.ProtectTuned(DuplicationWithValueChecks, prof, Tuning{RangeThreshold: 1 << 30, MinRangeCoverage: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	_, tight, err := prog.ProtectTuned(DuplicationWithValueChecks, prof, Tuning{RangeThreshold: 1, MinRangeCoverage: 0.999999})
	if err != nil {
		t.Fatal(err)
	}
	if loose.ValueChecks < tight.ValueChecks {
		t.Errorf("loose tuning produced fewer checks (%d) than tight (%d)", loose.ValueChecks, tight.ValueChecks)
	}
}

func TestInjectFaultsWithRecovery(t *testing.T) {
	prog, _ := Compile("kernel", testKernel)
	hard, _, err := prog.Protect(DuplicationOnly, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := hard.InjectFaultsWithRecovery(testInput(), Campaign{Trials: 150, Seed: 11, Output: "out"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Recovered == 0 {
		t.Fatal("nothing recovered")
	}
	if out.Overhead <= 0 {
		t.Errorf("overhead = %v", out.Overhead)
	}
}

func TestTraceThroughFacade(t *testing.T) {
	prog, _ := Compile("kernel", testKernel)
	var buf bytes.Buffer
	res, err := prog.Trace(testInput(), &buf, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dyn == 0 {
		t.Fatal("no execution")
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 100 {
		t.Fatalf("trace lines = %d, want 100 (limit)", lines)
	}
	if !strings.Contains(buf.String(), "main") {
		t.Error("trace missing function name")
	}
}

func TestOutcomesHelpers(t *testing.T) {
	o := &Outcomes{Trials: 200, Masked: 150, HWDetected: 20, SWDetected: 20, Failures: 5, USDCs: 5}
	if got := o.Coverage(); got != 0.95 {
		t.Errorf("coverage = %v", got)
	}
	if got := o.USDCRate(); got != 0.025 {
		t.Errorf("usdc rate = %v", got)
	}
	empty := &Outcomes{}
	if empty.Coverage() != 0 || empty.USDCRate() != 0 {
		t.Error("empty outcomes should report zero rates")
	}
}

func TestOutcomesStringZeroTrials(t *testing.T) {
	// Trials == 0 is reachable (all trials quarantined, or cancellation
	// before the first trial lands); String must say so instead of printing
	// a meaningless 0% coverage line.
	empty := &Outcomes{}
	if got := empty.String(); got != "no completed trials" {
		t.Errorf("empty String() = %q", got)
	}
	quarantined := &Outcomes{Anomalies: []Anomaly{{Trial: 0, Reason: "panic"}, {Trial: 1, Reason: "timeout"}}}
	if got := quarantined.String(); got != "no completed trials [2 quarantined]" {
		t.Errorf("quarantined String() = %q", got)
	}
	partial := &Outcomes{Trials: 10, Masked: 10, Partial: true}
	if got := partial.String(); !strings.Contains(got, "[partial]") || !strings.Contains(got, "trials=10") {
		t.Errorf("partial String() = %q", got)
	}
	early := &Outcomes{Trials: 40, Masked: 40, EarlyStopped: true, TrialsSaved: 60}
	if got := early.String(); !strings.Contains(got, "early stop") || !strings.Contains(got, "60 trials saved") {
		t.Errorf("early-stop String() = %q", got)
	}
}

func TestCampaignRejectsNegativeCounts(t *testing.T) {
	prog, err := Compile("kernel", testKernel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.InjectFaults(testInput(), Campaign{Trials: -1, Output: "out"}); err == nil {
		t.Error("negative Trials accepted")
	}
	if _, err := prog.InjectFaults(testInput(), Campaign{Trials: 10, Workers: -2, Output: "out"}); err == nil {
		t.Error("negative Workers accepted")
	}
	// The recovery path shares campaignSetup and must reject identically.
	if _, err := prog.InjectFaultsWithRecovery(testInput(), Campaign{Trials: -1, Output: "out"}); err == nil {
		t.Error("recovery: negative Trials accepted")
	}
}

func TestCampaignJournalResumeThroughPublicAPI(t *testing.T) {
	prog, err := Compile("kernel", testKernel)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "campaign.journal")
	c := Campaign{Trials: 30, Seed: 7, Output: "out", Journal: path}
	full, err := prog.InjectFaults(testInput(), c)
	if err != nil {
		t.Fatal(err)
	}

	// Chop the journal mid-file and resume: the outcomes must be identical
	// and some trials must have been replayed rather than re-run.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	c.Resume = true
	resumed, err := prog.InjectFaults(testInput(), c)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Replayed == 0 {
		t.Error("resume replayed nothing from a half-complete journal")
	}
	a, b := *full, *resumed
	a.Replayed, b.Replayed = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("resumed outcomes differ:\nfull=%+v\nresumed=%+v", full, resumed)
	}
}

func TestCampaignFaultModelField(t *testing.T) {
	prog, err := Compile("kernel", testKernel)
	if err != nil {
		t.Fatal(err)
	}
	// Default campaigns resolve to the paper's model.
	out, err := prog.InjectFaults(testInput(), Campaign{Trials: 20, Seed: 3, Output: "out"})
	if err != nil {
		t.Fatal(err)
	}
	if out.FaultModel != "reg-flip" {
		t.Fatalf("default FaultModel = %q, want reg-flip", out.FaultModel)
	}
	// Every registered model runs through the facade and reports itself.
	for _, name := range FaultModels() {
		out, err := prog.InjectFaults(testInput(), Campaign{Trials: 10, Seed: 3, Output: "out", FaultModel: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.FaultModel != name {
			t.Fatalf("FaultModel = %q, want %q", out.FaultModel, name)
		}
		lo, hi := out.CoverageInterval()
		if lo < 0 || hi > 1 || lo > out.Coverage() || hi < out.Coverage() {
			t.Fatalf("%s: coverage interval [%f,%f] does not bracket %f", name, lo, hi, out.Coverage())
		}
	}
	// Unknown models are rejected with the registered set.
	if _, err := prog.InjectFaults(testInput(), Campaign{Trials: 10, Output: "out", FaultModel: "cosmic-ray"}); err == nil || !strings.Contains(err.Error(), "unknown fault model") {
		t.Fatalf("unknown model: %v", err)
	}
}

func TestBranchTargetsShim(t *testing.T) {
	prog, err := Compile("kernel", testKernel)
	if err != nil {
		t.Fatal(err)
	}
	// The deprecated flag is a shim over the branch-target model: same
	// seeds, bit-identical outcomes, and the resolved model is reported.
	shim, err := prog.InjectFaults(testInput(), Campaign{Trials: 40, Seed: 5, Output: "out", BranchTargets: true})
	if err != nil {
		t.Fatal(err)
	}
	if shim.FaultModel != "branch-target" {
		t.Fatalf("shim FaultModel = %q", shim.FaultModel)
	}
	direct, err := prog.InjectFaults(testInput(), Campaign{Trials: 40, Seed: 5, Output: "out", FaultModel: "branch-target"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shim, direct) {
		t.Fatalf("shim outcomes differ from -fault-model branch-target:\nshim=%+v\ndirect=%+v", shim, direct)
	}
	// Setting both fields is ambiguous and must be rejected, naming both.
	_, err = prog.InjectFaults(testInput(), Campaign{Trials: 10, Output: "out", BranchTargets: true, FaultModel: "mem-flip"})
	if err == nil || !strings.Contains(err.Error(), "BranchTargets") || !strings.Contains(err.Error(), "FaultModel") {
		t.Fatalf("conflicting fields: %v", err)
	}
	// The recovery path shares campaignSetup and must reject identically.
	_, err = prog.InjectFaultsWithRecovery(testInput(), Campaign{Trials: 10, Output: "out", BranchTargets: true, FaultModel: "mem-flip"})
	if err == nil || !strings.Contains(err.Error(), "BranchTargets") {
		t.Fatalf("recovery: conflicting fields: %v", err)
	}
}
